// Package farm shards an experiment point matrix across worker processes
// over HTTP — the multi-process layer above the experiment Runner's
// in-process pool.
//
// Topology: one coordinator owns the sweep. It enqueues points (an
// Execute call per point, issued by the unchanged experiments harness)
// and serves a small stdlib-only HTTP protocol; N workers — anywhere that
// can reach the coordinator — pull points, simulate them locally, and
// post the finished stats back as the stable wire encoding
// (stats.WireBytes). Because every point is bit-deterministic per
// (config, benchmark), and results are replayed into the sweep in point
// order exactly like the -j worker pool's buffers, a farmed sweep's
// output is byte-identical to a sequential run no matter how points land
// on workers.
//
// Fault model: a lease is granted per point with a heartbeat deadline.
// Workers heartbeat while simulating; a worker that dies (or loses the
// network) misses its deadline, the lease expires, and the point is
// requeued — up to MaxRetries times, after which the sweep fails rather
// than loops. Late results from a lost lease are still accepted if the
// point is unresolved (first result wins; all results for a point are
// identical by determinism). A worker whose coordinator vanishes retries
// with bounded exponential backoff, then exits.
//
// Protocol (JSON bodies, all under /farm/):
//
//	POST /farm/lease     {"worker": w, "digest": d} → 200 Job | 204 none pending
//	                                               | 409 binary digest mismatch
//	                                               | 410 sweep finished
//	                                               | 503 + Retry-After: draining
//	POST /farm/heartbeat {"worker": w, "lease": l} → 200 | 404 lease lost
//	POST /farm/result    {"worker": w, "lease": l, "seq": s,
//	                      "stats": base64 | "err": msg}      → 200
//	GET  /farm/status                              → JSON snapshot
package farm

import (
	"rccsim/internal/config"
	"rccsim/internal/sim"
	"rccsim/internal/workload"
)

// Executor runs one simulation point to completion — structurally
// identical to experiments.Executor, redeclared here so farm and
// experiments stay import-cycle-free while Coordinator satisfies both.
type Executor interface {
	Execute(cfg config.Config, b workload.Benchmark) (sim.Result, error)
}

// Job is one leased point as sent to a worker.
type Job struct {
	Lease       uint64        `json:"lease"` // unique lease id; heartbeat and result carry it
	Seq         int           `json:"seq"`   // point index within the sweep
	Bench       string        `json:"bench"`
	Config      config.Config `json:"config"`
	HeartbeatMS int64         `json:"heartbeat_ms"` // worker should heartbeat this often
}

// leaseRequest is the body of POST /farm/lease. Digest is the worker
// binary's behaviour fingerprint (sim.GoldenDigest); the coordinator
// answers 409 Conflict on a mismatch so a stale worker binary cannot
// silently poison a deterministic sweep.
type leaseRequest struct {
	Worker string `json:"worker"`
	Digest string `json:"digest"`
}

// heartbeatPost is the body of POST /farm/heartbeat.
type heartbeatPost struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
}

// resultPost is the body of POST /farm/result. Stats carries the
// stats.WireBytes encoding (base64 in JSON); Err a deterministic
// simulation failure (which fails the point — retrying a deterministic
// error reproduces it).
type resultPost struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
	Seq    int    `json:"seq"`
	Stats  []byte `json:"stats,omitempty"`
	Err    string `json:"err,omitempty"`
}

// Status is the GET /farm/status snapshot.
type Status struct {
	Total    int            `json:"total"`    // points enqueued so far
	Done     int            `json:"done"`     // points resolved
	Pending  int            `json:"pending"`  // queued, not leased
	Inflight []InflightJob  `json:"inflight"` // leased, awaiting result
	Workers  []WorkerStatus `json:"workers"`
	Requeues uint64         `json:"requeues"` // leases lost and points requeued
	Draining bool           `json:"draining"`
}

// InflightJob describes one active lease.
type InflightJob struct {
	Seq    int    `json:"seq"`
	Label  string `json:"label"` // "bench/protocol"
	Worker string `json:"worker"`
}

// WorkerStatus summarizes one worker the coordinator has seen.
type WorkerStatus struct {
	Name         string  `json:"name"`
	Points       int     `json:"points"` // results accepted from this worker
	PointsPerSec float64 `json:"points_per_sec"`
	Lost         int     `json:"lost"` // leases this worker let expire
}
