package sc

import (
	"reflect"
	"testing"

	"rccsim/internal/timing"
)

func TestRandomLitmusWellFormed(t *testing.T) {
	rng := timing.NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		threads, ops, lines := 2+rng.Intn(3), 1+rng.Intn(4), 1+rng.Intn(3)
		l := RandomLitmus(rng, threads, ops, lines)
		if len(l.Threads) != threads {
			t.Fatalf("trial %d: %d threads, want %d", trial, len(l.Threads), threads)
		}
		vals := make(map[uint64]bool)
		for ti, tops := range l.Threads {
			if len(tops) != ops {
				t.Fatalf("trial %d: thread %d has %d ops, want %d", trial, ti, len(tops), ops)
			}
			for _, op := range tops {
				if op.Line >= uint64(lines) {
					t.Fatalf("trial %d: line %d out of range %d", trial, op.Line, lines)
				}
				if op.Store {
					if op.Val == 0 {
						t.Fatalf("trial %d: zero store value", trial)
					}
					if vals[op.Val] {
						t.Fatalf("trial %d: duplicate store value %d", trial, op.Val)
					}
					vals[op.Val] = true
				} else if op.Val != 0 {
					t.Fatalf("trial %d: load carries value %d", trial, op.Val)
				}
			}
		}
	}
}

func TestRandomLitmusDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := RandomLitmus(timing.NewRNG(seed), 3, 3, 2)
		b := RandomLitmus(timing.NewRNG(seed), 3, 3, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: RandomLitmus not deterministic", seed)
		}
	}
}

// scRefRun executes the litmus atomically under one concrete interleaving
// chosen by rng and returns each thread's observed load values in program
// order. This is an independent reference executor: the outcome it
// produces must be a member of SCOutcomes, and feeding the same values to
// a Recorder in completion order must reproduce the exact outcome key.
func scRefRun(l Litmus, rng *timing.RNG) map[int][]uint64 {
	pc := make([]int, len(l.Threads))
	mem := map[uint64]uint64{}
	obs := make(map[int][]uint64)
	for {
		var live []int
		for tid := range l.Threads {
			if pc[tid] < len(l.Threads[tid]) {
				live = append(live, tid)
			}
		}
		if len(live) == 0 {
			return obs
		}
		tid := live[rng.Intn(len(live))]
		op := l.Threads[tid][pc[tid]]
		pc[tid]++
		if op.Store {
			mem[op.Line] = op.Val
		} else {
			obs[tid] = append(obs[tid], mem[op.Line])
		}
	}
}

// TestRecorderEnumeratorAgreement drives a Recorder with the loads of a
// reference SC execution, delivered in the same per-thread order the
// machine completes them, and checks the assembled outcome key is exactly
// one SCOutcomes enumerated. This pins the key format the simulation
// tests rely on: thread-major slots, program order within a thread.
func TestRecorderEnumeratorAgreement(t *testing.T) {
	rng := timing.NewRNG(23)
	const maxWarps = 4
	for trial := 0; trial < 100; trial++ {
		l := RandomLitmus(rng, 3, 3, 2)
		allowed := SCOutcomes(l)
		obs := scRefRun(l, rng)

		rec := NewRecorder(maxWarps)
		var placement [][2]int
		for tid := range l.Threads {
			sm, warp := tid%2, tid/2 // mixed same-SM / cross-SM placement
			placement = append(placement, [2]int{sm, warp})
			for _, v := range obs[tid] {
				rec.LoadObserved(sm, warp, 0, 0, v)
			}
		}
		got := rec.OutcomeFor(placement)
		if !allowed[got] {
			t.Fatalf("trial %d: recorder outcome %q not in the %d SC outcomes\nlitmus: %v",
				trial, got, len(allowed), l.Threads)
		}
	}
}

// TestSCOutcomesKnownSets pins the enumerator on the classic tests.
func TestSCOutcomesKnownSets(t *testing.T) {
	sb := SCOutcomes(StoreBuffering())
	if sb[Outcome("0,0")] {
		t.Fatal("SC enumeration allows SB 0,0")
	}
	for _, want := range []Outcome{"1,0", "0,1", "1,1"} {
		if !sb[want] {
			t.Fatalf("SC enumeration missing SB outcome %s", want)
		}
	}
	mp := SCOutcomes(MessagePassing())
	if mp[Outcome("1,0")] {
		t.Fatal("SC enumeration allows MP done=1,data=0")
	}
	lb := SCOutcomes(LoadBuffering())
	if lb[Outcome("1,1")] {
		t.Fatal("SC enumeration allows LB 1,1")
	}
}
