package sc

import (
	"testing"

	"rccsim/internal/workload"
)

func TestMessagePassingOutcomes(t *testing.T) {
	out := SCOutcomes(MessagePassing())
	// Loads: (done, data). SC allows 0,0 / 0,1 / 1,1 — never 1,0.
	want := map[Outcome]bool{"0,0": true, "0,1": true, "1,1": true}
	if len(out) != len(want) {
		t.Fatalf("outcomes = %v", out)
	}
	for o := range want {
		if !out[o] {
			t.Fatalf("missing outcome %q", o)
		}
	}
	if out["1,0"] {
		t.Fatal("SC must forbid done=1,data=0")
	}
}

func TestStoreBufferingOutcomes(t *testing.T) {
	out := SCOutcomes(StoreBuffering())
	if out["0,0"] {
		t.Fatal("SC must forbid r1=0,r2=0 in SB")
	}
	for _, o := range []Outcome{"1,0", "0,1", "1,1"} {
		if !out[o] {
			t.Fatalf("missing SC outcome %q", o)
		}
	}
}

func TestLoadBufferingOutcomes(t *testing.T) {
	out := SCOutcomes(LoadBuffering())
	if out["1,1"] {
		t.Fatal("SC must forbid r1=1,r2=1 in LB")
	}
}

func TestCoRROutcomes(t *testing.T) {
	out := SCOutcomes(CoRR())
	if out["1,0"] {
		t.Fatal("coherence must forbid new-then-old reads")
	}
	for _, o := range []Outcome{"0,0", "0,1", "1,1"} {
		if !out[o] {
			t.Fatalf("missing outcome %q", o)
		}
	}
}

func TestIRIWOutcomes(t *testing.T) {
	out := SCOutcomes(IRIW())
	// Readers must agree on the write order: (1,0) and (1,0) means
	// thread 3 saw X before Y and thread 4 saw Y before X.
	if out["1,0,1,0"] {
		t.Fatal("SC must forbid the IRIW disagreement outcome")
	}
	if !out["1,1,1,1"] || !out["0,0,0,0"] {
		t.Fatal("missing trivially-SC outcomes")
	}
}

func TestTraceConversion(t *testing.T) {
	tr := Trace(MessagePassing().Threads[0], 100)
	if len(tr) != 2 {
		t.Fatalf("trace len = %d", len(tr))
	}
	if tr[0].Op != workload.OpStore || tr[0].Lines[0] != 100 || tr[0].Val != 1 {
		t.Fatalf("store mis-translated: %+v", tr[0])
	}
	if tr[1].Op != workload.OpStore || tr[1].Lines[0] != 101 {
		t.Fatalf("second store mis-translated: %+v", tr[1])
	}
}

func TestRecorderOrdering(t *testing.T) {
	r := NewRecorder(8)
	r.LoadObserved(0, 1, 0, 5, 10)
	r.LoadObserved(0, 1, 1, 6, 20)
	r.LoadObserved(1, 0, 0, 7, 30)
	out := r.OutcomeFor([][2]int{{0, 1}, {1, 0}})
	if out != "10,20,30" {
		t.Fatalf("outcome = %q", out)
	}
	if len(r.Keys()) != 2 {
		t.Fatalf("keys = %v", r.Keys())
	}
}

func TestAllLitmusNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range AllLitmus() {
		if l.Name == "" || seen[l.Name] {
			t.Fatalf("bad litmus name %q", l.Name)
		}
		seen[l.Name] = true
		if len(SCOutcomes(l)) == 0 {
			t.Fatalf("%s has no outcomes", l.Name)
		}
	}
}

func TestWRCOutcomes(t *testing.T) {
	out := SCOutcomes(WRC())
	// Loads: (r1=X@T1, r2=Y@T2, r3=X@T2). Causality: r2=1 implies T1 saw
	// X... only when r1=1; SC forbids r1=1, r2=1, r3=0.
	if out["1,1,0"] {
		t.Fatal("SC must forbid the WRC causality violation")
	}
	for _, o := range []Outcome{"0,0,0", "1,1,1", "1,0,0"} {
		if !out[o] {
			t.Fatalf("missing SC outcome %q", o)
		}
	}
}

func TestCoWROutcomes(t *testing.T) {
	out := SCOutcomes(CoWR())
	// The reader just wrote 1; it may see 1 or the remote 2, never 0.
	if out["0"] {
		t.Fatal("CoWR must never read the initial value")
	}
	if !out["1"] || !out["2"] {
		t.Fatalf("missing outcomes: %v", out)
	}
}

func TestTwoPlusTwoWOutcomes(t *testing.T) {
	out := SCOutcomes(TwoPlusTwoW())
	if len(out) == 0 {
		t.Fatal("no outcomes")
	}
	// Each thread's trailing read sees SOME write to its location, never 0.
	for o := range out {
		if o[0] == '0' {
			t.Fatalf("X read as 0 in %q", o)
		}
	}
}
