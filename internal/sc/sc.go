// Package sc provides the sequential-consistency checking machinery used
// by the test suite: small litmus programs (message passing, store
// buffering, coherence), an enumerator of their SC-allowed outcomes, and
// an observer that records the values loads return during a simulation so
// executions can be validated against the allowed set.
//
// Values are unique per store, so an execution's outcome is fully
// determined by the tuple of values the litmus loads observed.
package sc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rccsim/internal/timing"
	"rccsim/internal/workload"
)

// LitmusOp is one operation of a litmus thread.
type LitmusOp struct {
	Store bool
	Line  uint64
	Val   uint64 // stored value (Store) — loads record what they see
}

// Litmus is a named litmus test: a handful of threads, each a short
// straight-line sequence of loads and stores, plus the set of outcomes
// sequential consistency permits.
type Litmus struct {
	Name    string
	Threads [][]LitmusOp
}

// MessagePassing is the data/done pattern of Sec. II-A: SC forbids
// observing done=1 with data=0.
func MessagePassing() Litmus {
	return Litmus{
		Name: "message-passing",
		Threads: [][]LitmusOp{
			{ // producer
				{Store: true, Line: 0, Val: 1}, // data = 1
				{Store: true, Line: 1, Val: 1}, // done = 1
			},
			{ // consumer
				{Line: 1}, // read done
				{Line: 0}, // read data
			},
		},
	}
}

// StoreBuffering is the classic SB test: SC forbids both threads reading 0.
func StoreBuffering() Litmus {
	return Litmus{
		Name: "store-buffering",
		Threads: [][]LitmusOp{
			{
				{Store: true, Line: 0, Val: 1},
				{Line: 1},
			},
			{
				{Store: true, Line: 1, Val: 1},
				{Line: 0},
			},
		},
	}
}

// LoadBuffering is LB: SC forbids both loads observing the other thread's
// (program-order later) store.
func LoadBuffering() Litmus {
	return Litmus{
		Name: "load-buffering",
		Threads: [][]LitmusOp{
			{
				{Line: 0},
				{Store: true, Line: 1, Val: 1},
			},
			{
				{Line: 1},
				{Store: true, Line: 0, Val: 1},
			},
		},
	}
}

// CoRR checks per-location coherence: two reads of the same location by
// one thread must not observe a newer value and then an older one.
func CoRR() Litmus {
	return Litmus{
		Name: "coherence-rr",
		Threads: [][]LitmusOp{
			{
				{Store: true, Line: 0, Val: 1},
			},
			{
				{Line: 0},
				{Line: 0},
			},
		},
	}
}

// IRIW is independent-reads-independent-writes: under SC, the two reader
// threads must not observe the two writes in opposite orders.
func IRIW() Litmus {
	return Litmus{
		Name: "iriw",
		Threads: [][]LitmusOp{
			{{Store: true, Line: 0, Val: 1}},
			{{Store: true, Line: 1, Val: 1}},
			{{Line: 0}, {Line: 1}},
			{{Line: 1}, {Line: 0}},
		},
	}
}

// WRC is write-to-read causality: T0 writes X; T1 sees it and writes Y;
// T2 sees Y but must then also see X under SC.
func WRC() Litmus {
	return Litmus{
		Name: "wrc",
		Threads: [][]LitmusOp{
			{{Store: true, Line: 0, Val: 1}},
			{
				{Line: 0},                      // r1 = X
				{Store: true, Line: 1, Val: 1}, // Y = 1
			},
			{
				{Line: 1}, // r2 = Y
				{Line: 0}, // r3 = X
			},
		},
	}
}

// TwoPlusTwoW is 2+2W: both threads write both locations in opposite
// orders; SC forbids each location ending with the first thread's first
// write... observed through trailing reads by each writer.
func TwoPlusTwoW() Litmus {
	return Litmus{
		Name: "2+2w",
		Threads: [][]LitmusOp{
			{
				{Store: true, Line: 0, Val: 1},
				{Store: true, Line: 1, Val: 2},
				{Line: 0},
			},
			{
				{Store: true, Line: 1, Val: 3},
				{Store: true, Line: 0, Val: 4},
				{Line: 1},
			},
		},
	}
}

// CoWR is per-location write-read coherence: a thread reading its own
// write must not see an older value unless another write intervened.
func CoWR() Litmus {
	return Litmus{
		Name: "coherence-wr",
		Threads: [][]LitmusOp{
			{
				{Store: true, Line: 0, Val: 1},
				{Line: 0},
			},
			{
				{Store: true, Line: 0, Val: 2},
			},
		},
	}
}

// AllLitmus returns every litmus test.
func AllLitmus() []Litmus {
	return []Litmus{
		MessagePassing(), StoreBuffering(), LoadBuffering(),
		CoRR(), CoWR(), IRIW(), WRC(), TwoPlusTwoW(),
	}
}

// Outcome is the concatenated observed load values in (thread, program
// order) position order, e.g. "1,0".
type Outcome string

// loadSlots assigns each load of the litmus a stable outcome position
// (thread-major, program order within a thread).
func loadSlots(l Litmus) map[[2]int]int {
	slots := make(map[[2]int]int)
	n := 0
	for tid, ops := range l.Threads {
		for i, op := range ops {
			if !op.Store {
				slots[[2]int{tid, i}] = n
				n++
			}
		}
	}
	return slots
}

// enumState is one node of the interleaving enumeration.
type enumState struct {
	pc  []int
	mem map[uint64]uint64
	obs []uint64
}

// SCOutcomes enumerates every outcome reachable by interleaving the
// threads' operations atomically in program order (the definition of SC).
// Outcome positions are stable: thread-major, program order within.
func SCOutcomes(l Litmus) map[Outcome]bool {
	slots := loadSlots(l)
	results := make(map[Outcome]bool)
	var rec func(st enumState)
	rec = func(st enumState) {
		advanced := false
		for tid := range l.Threads {
			if st.pc[tid] >= len(l.Threads[tid]) {
				continue
			}
			advanced = true
			i := st.pc[tid]
			op := l.Threads[tid][i]
			next := enumState{
				pc:  append([]int(nil), st.pc...),
				mem: make(map[uint64]uint64, len(st.mem)),
				obs: append([]uint64(nil), st.obs...),
			}
			for k, v := range st.mem {
				next.mem[k] = v
			}
			next.pc[tid]++
			if op.Store {
				next.mem[op.Line] = op.Val
			} else {
				next.obs[slots[[2]int{tid, i}]] = next.mem[op.Line]
			}
			rec(next)
		}
		if !advanced {
			results[formatOutcome(st.obs)] = true
		}
	}
	rec(enumState{
		pc:  make([]int, len(l.Threads)),
		mem: map[uint64]uint64{},
		obs: make([]uint64, len(slots)),
	})
	return results
}

func formatOutcome(obs []uint64) Outcome {
	parts := make([]string, len(obs))
	for i, v := range obs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return Outcome(strings.Join(parts, ","))
}

// Trace converts a litmus thread into a warp trace. base offsets the
// litmus lines into the machine's address space.
func Trace(ops []LitmusOp, base uint64) workload.Trace {
	var tr workload.Trace
	for _, op := range ops {
		if op.Store {
			tr = append(tr, workload.Instr{Op: workload.OpStore, Lines: []uint64{base + op.Line}, Val: op.Val})
		} else {
			tr = append(tr, workload.Instr{Op: workload.OpLoad, Lines: []uint64{base + op.Line}})
		}
	}
	return tr
}

// Recorder collects load observations keyed by (sm, warp) and yields the
// outcome in (thread, program-position) order.
type Recorder struct {
	// keyed by sm*maxWarps+warp, each a slice of observed values in
	// completion order. Under SC issue rules completion order equals
	// program order within a warp; under WO litmus traces are fenced.
	perThread map[int][]uint64
	maxWarps  int
	// Sharded machines call LoadObserved from several shard goroutines.
	// Each warp stays pinned to one shard, so per-key append order is
	// still completion order; only the map itself needs the lock.
	mu sync.Mutex
}

// NewRecorder builds a recorder; maxWarps is WarpsPerSM.
func NewRecorder(maxWarps int) *Recorder {
	return &Recorder{perThread: make(map[int][]uint64), maxWarps: maxWarps}
}

// LoadObserved implements gpu.Observer.
func (r *Recorder) LoadObserved(sm, warp, pc int, line, val uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := sm*r.maxWarps + warp
	r.perThread[key] = append(r.perThread[key], val)
}

// OutcomeFor assembles the outcome for litmus threads placed at the given
// (sm, warp) coordinates in declaration order.
func (r *Recorder) OutcomeFor(placement [][2]int) Outcome {
	var obs []uint64
	for _, p := range placement {
		key := p[0]*r.maxWarps + p[1]
		obs = append(obs, r.perThread[key]...)
	}
	return formatOutcome(obs)
}

// Keys returns the populated thread keys (diagnostics).
func (r *Recorder) Keys() []int {
	keys := make([]int, 0, len(r.perThread))
	for k := range r.perThread {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// RandomLitmus generates a small random concurrent program (threads x ops
// over a few lines, unique store values) whose SC outcome set is still
// enumerable. Used by property tests: any execution of an SC machine must
// land inside SCOutcomes(l).
func RandomLitmus(rng *timing.RNG, threads, opsPerThread, lines int) Litmus {
	l := Litmus{Name: "random"}
	val := uint64(0)
	for t := 0; t < threads; t++ {
		var ops []LitmusOp
		for i := 0; i < opsPerThread; i++ {
			line := uint64(rng.Intn(lines))
			if rng.Bool(0.5) {
				val++
				ops = append(ops, LitmusOp{Store: true, Line: line, Val: val})
			} else {
				ops = append(ops, LitmusOp{Line: line})
			}
		}
		l.Threads = append(l.Threads, ops)
	}
	return l
}

// FencedTrace converts a litmus thread into a warp trace with a FENCE
// after every operation — the conservative fencing that restores SC on a
// weakly ordered machine.
func FencedTrace(ops []LitmusOp, base uint64) workload.Trace {
	plain := Trace(ops, base)
	out := make(workload.Trace, 0, 2*len(plain))
	for _, in := range plain {
		out = append(out, in, workload.Instr{Op: workload.OpFence})
	}
	return out
}
