package config

import "testing"

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Small().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMatchesTableIII(t *testing.T) {
	c := Default()
	if got := c.NumSMs; got != 16 {
		t.Errorf("NumSMs = %d, want 16", got)
	}
	if got := c.WarpsPerSM * c.WarpWidth; got != 48*32 {
		t.Errorf("threads per SM = %d, want 1536", got)
	}
	// 32 KB, 4-way, 128 B lines.
	if got := c.L1Sets * c.L1Ways * c.LineBytes; got != 32*1024 {
		t.Errorf("L1 size = %d, want 32768", got)
	}
	// 1 MB total L2 = 8 x 128 KB.
	if got := c.L2Partitions * c.L2SetsPerPart * c.L2Ways * c.LineBytes; got != 1024*1024 {
		t.Errorf("L2 size = %d, want 1 MiB", got)
	}
	if c.L2Partitions != 8 {
		t.Errorf("L2 partitions = %d, want 8", c.L2Partitions)
	}
}

func TestFlitSizes(t *testing.T) {
	c := Default()
	if got := c.ControlFlits(); got != 2 {
		t.Errorf("control flits = %d, want 2", got)
	}
	if got := c.DataFlits(); got != 34 {
		t.Errorf("data flits = %d, want 34", got)
	}
}

func TestProtocolTableI(t *testing.T) {
	// Table I: SC support and stall-free store permissions.
	cases := []struct {
		p           Protocol
		sc, nostall bool
	}{
		{MESI, true, false},
		{TCS, true, false},
		{TCW, false, true},
		{RCC, true, true},
		{RCCWO, true, true},
	}
	for _, tc := range cases {
		if tc.p.SupportsSC() != tc.sc {
			t.Errorf("%v SupportsSC = %v, want %v", tc.p, tc.p.SupportsSC(), tc.sc)
		}
		if tc.p.StallFreeStores() != tc.nostall {
			t.Errorf("%v StallFreeStores = %v, want %v", tc.p, tc.p.StallFreeStores(), tc.nostall)
		}
	}
}

func TestVirtualChannels(t *testing.T) {
	if MESI.VirtualChannels() != 5 {
		t.Error("MESI should need 5 VCs")
	}
	for _, p := range []Protocol{TCS, TCW, RCC, RCCWO} {
		if p.VirtualChannels() != 2 {
			t.Errorf("%v should need 2 VCs", p)
		}
	}
}

func TestConsistencyPerProtocol(t *testing.T) {
	for _, p := range []Protocol{MESI, TCS, RCC, SCIdeal} {
		if p.Consistency() != SC {
			t.Errorf("%v should run SC", p)
		}
	}
	for _, p := range []Protocol{TCW, RCCWO} {
		if p.Consistency() != WO {
			t.Errorf("%v should run WO", p)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.WarpsPerSM = -1 },
		func(c *Config) { c.L1Sets = 0 },
		func(c *Config) { c.L2Ways = 0 },
		func(c *Config) { c.L1MSHRs = 0 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.TCLease = 0 },
		func(c *Config) { c.RCCMinLease = 0 },
		func(c *Config) { c.RCCMaxLease = 4 },
		func(c *Config) { c.RCCTSMax = 100 },
		func(c *Config) { c.Scale = 0 },
	}
	for i, m := range mutate {
		c := Default()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestProtocolStrings(t *testing.T) {
	want := map[Protocol]string{
		MESI: "MESI", TCS: "TCS", TCW: "TCW",
		RCC: "RCC", RCCWO: "RCC-WO", SCIdeal: "SC-IDEAL",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Protocol(99).String() == "" {
		t.Error("unknown protocol should still print")
	}
}
