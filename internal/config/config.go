// Package config describes the simulated machine. The default values follow
// Table III of the paper (an NVIDIA GTX 480 / Fermi-class GPU): 16 SMs with
// 48 warps of 32 threads each, 32 KB 4-way L1s, a 1 MB 8-partition L2,
// crossbar interconnect with 32-bit flits, and GDDR timing parameters.
package config

import (
	"fmt"
	"strings"
)

// Protocol selects the coherence protocol (and implicitly which controller
// pair drives the L1s and L2 partitions).
type Protocol int

const (
	// MESI is the CPU-like directory protocol adapted to write-through
	// L1s — the paper's baseline ("MESI" in Figs 1, 8 and 9).
	MESI Protocol = iota
	// TCS is TC-Strong: physical-timestamp leases; stores stall at the L2
	// until the block's lease has expired. SC-capable.
	TCS
	// TCW is TC-Weak: stores complete immediately and return a global
	// write completion time (GWCT); fences stall until it passes. Not
	// SC-capable.
	TCW
	// RCC is Relativistic Cache Coherence (the paper's contribution):
	// logical-timestamp leases, instant write permissions, SC-capable.
	RCC
	// RCCWO is the weakly ordered RCC variant of Sec. III-F (separate
	// read/write logical views merged at fences).
	RCCWO
	// SCIdeal is the idealized SC machine of Fig. 1d: read and write
	// coherence permissions are acquired instantly (invalidations are
	// free and immediate); only the raw L2/DRAM round trips remain.
	SCIdeal
)

// Protocols returns every protocol, in the paper's figure order.
func Protocols() []Protocol {
	return []Protocol{MESI, TCS, TCW, RCC, RCCWO, SCIdeal}
}

// ParseProtocol maps a figure name ("RCC", "TCS", "MESI", "TCW",
// "RCC-WO", "SC-IDEAL"; case-insensitive) back to the Protocol.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range Protocols() {
		if strings.EqualFold(s, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("config: unknown protocol %q", s)
}

// String returns the name used in the paper's figures.
func (p Protocol) String() string {
	switch p {
	case MESI:
		return "MESI"
	case TCS:
		return "TCS"
	case TCW:
		return "TCW"
	case RCC:
		return "RCC"
	case RCCWO:
		return "RCC-WO"
	case SCIdeal:
		return "SC-IDEAL"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Consistency is the memory model enforced by the SM front end.
type Consistency int

const (
	// SC is the "naïve SC" of the paper: each warp issues global memory
	// operations one at a time, and local (scratchpad) operations stall
	// while a global access is outstanding. Fences are hardware no-ops.
	SC Consistency = iota
	// WO is weak ordering: warps may have many outstanding accesses;
	// FENCE instructions stall until the protocol's completion rule holds.
	WO
)

func (c Consistency) String() string {
	if c == SC {
		return "SC"
	}
	return "WO"
}

// Consistency returns the memory model each protocol is evaluated under in
// the paper: TCW and RCC-WO are weakly ordered, everything else runs SC.
func (p Protocol) Consistency() Consistency {
	if p == TCW || p == RCCWO {
		return WO
	}
	return SC
}

// SupportsSC reports whether the protocol can implement sequential
// consistency at all (Table I).
func (p Protocol) SupportsSC() bool { return p != TCW }

// StallFreeStores reports whether stores acquire write permissions without
// stalling (Table I).
func (p Protocol) StallFreeStores() bool {
	return p == RCC || p == RCCWO || p == TCW || p == SCIdeal
}

// VirtualChannels returns the number of virtual networks the protocol needs
// for deadlock freedom (5 for MESI, 2 otherwise — Table III). The count
// feeds the interconnect energy model.
func (p Protocol) VirtualChannels() int {
	if p == MESI || p == SCIdeal {
		return 5
	}
	return 2
}

// Scheduler selects the warp scheduling policy.
type Scheduler int

const (
	// LRR is loose round-robin (Table III's "loose round-robin").
	LRR Scheduler = iota
	// GTO is greedy-then-oldest: keep issuing from the last warp until
	// it stalls, then pick the oldest ready warp. Used for scheduler
	// sensitivity studies.
	GTO
)

func (s Scheduler) String() string {
	if s == GTO {
		return "GTO"
	}
	return "LRR"
}

// Config is the full machine description plus run parameters.
type Config struct {
	Protocol  Protocol
	Scheduler Scheduler

	// Cores (Table III "GPU cores").
	NumSMs     int // streaming multiprocessors
	WarpsPerSM int // resident warps per SM
	WarpWidth  int // threads per warp

	// L1 (per-core, write-through, write-no-allocate).
	L1Sets  int
	L1Ways  int
	L1MSHRs int

	// L2 (shared, write-back, address-interleaved across partitions).
	L2Partitions  int
	L2SetsPerPart int
	L2Ways        int
	L2MSHRs       int
	L2Latency     uint64 // tag+data access pipeline depth, core cycles

	// Local (scratchpad) access latency in core cycles.
	LocalLatency uint64

	// Interconnect: one crossbar per direction, 32-bit flits at 700 MHz,
	// several flit lanes per port (175 GB/s/direction aggregate), fixed
	// router pipeline latency.
	FlitBytes         int
	PortFlitsPerCycle int    // flits a port moves per core cycle
	NoCPipeLatency    uint64 // core cycles of router/wire pipeline per message
	// NoCJitter adds a per-message pseudo-random 0..NoCJitter cycles to
	// the router pipeline, drawn from a stream seeded by Seed. Zero (the
	// default, used by every performance experiment) disables it; the
	// differential fuzzer turns it on to widen the explored interleavings
	// while keeping runs bit-deterministic per (config, seed).
	NoCJitter uint64

	// DRAM (per L2 partition; GDDR at 1:1 with the 1.4 GHz core clock).
	DRAMBanksPerPart int
	DRAMRowLines     int    // cache lines per row buffer
	DRAMtCL          uint64 // CAS latency
	DRAMtRP          uint64 // precharge
	DRAMtRCD         uint64 // RAS-to-CAS
	DRAMBusCycles    uint64 // data transfer occupancy per line (128 B at 8 B/cycle)
	DRAMPipeLatency  uint64 // fixed L2<->DRAM queue/pipe latency each way

	// Cache line geometry.
	LineBytes int

	// TC-Strong / TC-Weak fixed lease duration (physical cycles).
	TCLease uint64

	// RCC parameters (Sec. III-E).
	RCCMinLease     uint64 // predictor minimum (8)
	RCCMaxLease     uint64 // predictor maximum and initial prediction (2048)
	RCCFixedLease   uint64 // used when the predictor is disabled
	RCCRenew        bool   // lease-extension mechanism (+R)
	RCCPredictor    bool   // lease predictor (+P)
	RCCTSMax        uint64 // timestamp rollover threshold (2^32-1)
	RCCLivelockTick uint64 // advance now by 1 every N cycles (10,000)

	// Workload parameters.
	Seed  uint64
	Scale float64 // multiplies per-warp trace lengths (1.0 = full size)

	// MaxCycles aborts a run that exceeds this many cycles (a safety net
	// against protocol deadlocks; 0 means no limit).
	MaxCycles uint64

	// Shards splits the SMs and their L1s across this many goroutines,
	// synchronized at epoch barriers one NoC delivery horizon apart. The
	// simulated results — stats digest included — are bit-identical to a
	// single-shard run; see internal/sim. 0 and 1 both mean sequential.
	// The effective count is clamped to NumSMs, and to 1 for SC-IDEAL
	// (its idealized invalidations bypass the interconnect's latency
	// floor, so its L2→L1 calls cannot be deferred to a barrier).
	Shards int
}

// Default returns the Table III machine with the RCC protocol.
func Default() Config {
	return Config{
		Protocol:   RCC,
		NumSMs:     16,
		WarpsPerSM: 48,
		WarpWidth:  32,

		L1Sets:  64, // 32 KB / 128 B / 4 ways
		L1Ways:  4,
		L1MSHRs: 128,

		L2Partitions:  8,
		L2SetsPerPart: 128, // 128 KB / 128 B / 8 ways
		L2Ways:        8,
		L2MSHRs:       128,
		L2Latency:     260, // with the NoC round trip: ~340-cycle unloaded L2 latency [38]

		LocalLatency: 24,

		FlitBytes:         4,
		PortFlitsPerCycle: 4,
		NoCPipeLatency:    60,

		DRAMBanksPerPart: 8,
		DRAMRowLines:     16,
		DRAMtCL:          12,
		DRAMtRP:          12,
		DRAMtRCD:         12,
		DRAMBusCycles:    8, // 128 B at 16 B/core-cycle (175 GB/s peak)
		DRAMPipeLatency:  46,

		LineBytes: 128,

		TCLease: 400,

		RCCMinLease:     8,
		RCCMaxLease:     2048,
		RCCFixedLease:   64,
		RCCRenew:        true,
		RCCPredictor:    true,
		RCCTSMax:        (1 << 32) - 1,
		RCCLivelockTick: 10000,

		Seed:      1,
		Scale:     1.0,
		MaxCycles: 200_000_000,
	}
}

// Small returns a reduced machine (4 SMs x 8 warps, small caches, small
// traces) used by unit tests to keep runtimes short while still exercising
// every protocol path.
func Small() Config {
	c := Default()
	c.NumSMs = 4
	c.WarpsPerSM = 8
	c.L1Sets = 16
	c.L2Partitions = 2
	c.L2SetsPerPart = 32
	c.Scale = 0.12
	return c
}

// Consistency returns the memory model the configured protocol runs under.
func (c Config) Consistency() Consistency { return c.Protocol.Consistency() }

// ControlFlits returns the flit size of an address-only coherence message
// (8 bytes of header/address).
func (c Config) ControlFlits() int { return (8 + c.FlitBytes - 1) / c.FlitBytes }

// DataFlits returns the flit size of a message carrying a full cache line
// (line plus 8 bytes of header/address).
func (c Config) DataFlits() int { return (c.LineBytes + 8 + c.FlitBytes - 1) / c.FlitBytes }

// Validate checks structural parameters and returns a descriptive error for
// the first problem found.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("config: NumSMs must be positive, got %d", c.NumSMs)
	case c.WarpsPerSM <= 0:
		return fmt.Errorf("config: WarpsPerSM must be positive, got %d", c.WarpsPerSM)
	case c.L1Sets <= 0 || c.L1Ways <= 0:
		return fmt.Errorf("config: L1 geometry invalid (%d sets x %d ways)", c.L1Sets, c.L1Ways)
	case c.L2Partitions <= 0 || c.L2SetsPerPart <= 0 || c.L2Ways <= 0:
		return fmt.Errorf("config: L2 geometry invalid (%d parts x %d sets x %d ways)",
			c.L2Partitions, c.L2SetsPerPart, c.L2Ways)
	case c.L1MSHRs <= 0 || c.L2MSHRs <= 0:
		return fmt.Errorf("config: MSHR counts must be positive")
	case c.LineBytes <= 0 || c.FlitBytes <= 0:
		return fmt.Errorf("config: line/flit sizes must be positive")
	case c.TCLease == 0:
		return fmt.Errorf("config: TCLease must be positive")
	case c.RCCMinLease == 0 || c.RCCMaxLease < c.RCCMinLease:
		return fmt.Errorf("config: RCC lease bounds invalid (%d..%d)", c.RCCMinLease, c.RCCMaxLease)
	case c.RCCTSMax < 4*c.RCCMaxLease:
		return fmt.Errorf("config: RCCTSMax %d too small for max lease %d", c.RCCTSMax, c.RCCMaxLease)
	case c.Scale <= 0:
		return fmt.Errorf("config: Scale must be positive, got %v", c.Scale)
	case c.Shards < 0:
		return fmt.Errorf("config: Shards must be non-negative, got %d", c.Shards)
	}
	return nil
}
