// Package rccsim is a cycle-level GPU memory-system simulator built to
// reproduce "Efficient Sequential Consistency in GPUs via Relativistic
// Cache Coherence" (Ren & Lis, HPCA 2017).
//
// The simulator models a Fermi-class GPU (16 SMs × 48 warps, write-through
// L1s, an 8-partition write-back L2, dual-crossbar NoC, GDDR DRAM) under
// five coherence protocols:
//
//   - RCC, the paper's contribution: logical-timestamp leases with instant
//     write permissions, sequentially consistent (plus RCC-WO, its weakly
//     ordered variant);
//   - TC-Strong and TC-Weak, the physical-timestamp baselines;
//   - MESI, a directory protocol on write-through L1s;
//   - SC-IDEAL, MESI with free, instant coherence permissions.
//
// The quickest way in:
//
//	cfg := rccsim.DefaultConfig()
//	cfg.Protocol = rccsim.RCC
//	res, err := rccsim.Run(cfg, "BFS")
//
// Every figure and table of the paper's evaluation can be regenerated via
// Experiments (or the cmd/rccbench tool).
package rccsim

import (
	"fmt"
	"io"

	"rccsim/internal/config"
	"rccsim/internal/energy"
	"rccsim/internal/experiments"
	"rccsim/internal/gpu"
	"rccsim/internal/obs"
	"rccsim/internal/obs/span"
	"rccsim/internal/report"
	"rccsim/internal/sim"
	"rccsim/internal/stats"
	"rccsim/internal/trace"
	"rccsim/internal/workload"
)

// Config is the machine description; DefaultConfig matches Table III of
// the paper.
type Config = config.Config

// Protocol selects the coherence protocol.
type Protocol = config.Protocol

// Protocol values.
const (
	MESI    = config.MESI
	TCS     = config.TCS
	TCW     = config.TCW
	RCC     = config.RCC
	RCCWO   = config.RCCWO
	SCIdeal = config.SCIdeal
)

// Stats is the counter set a run produces.
type Stats = stats.Run

// OpClass indexes the per-operation latency accumulators in Stats
// (Latency, LatencyHist, SCStallCycles).
type OpClass = stats.OpClass

// OpClass values.
const (
	OpLoad   = stats.OpLoad
	OpStore  = stats.OpStore
	OpAtomic = stats.OpAtomic
)

// EnergyBreakdown is the interconnect energy model output (nanojoules).
type EnergyBreakdown = energy.Breakdown

// Benchmark is one of the twelve Table IV workloads.
type Benchmark = workload.Benchmark

// Program is a generated kernel (per-SM, per-warp instruction traces).
type Program = workload.Program

// Result is a completed simulation.
type Result = sim.Result

// Machine is a fully assembled simulated GPU; use it directly for
// cycle-stepped inspection (see cmd/rcctrace), or Run for whole programs.
type Machine = sim.Machine

// Observer receives every load result during simulation (used for
// consistency checking); pass nil when only timing matters.
type Observer = gpu.Observer

// Runner memoizes benchmark runs and regenerates the paper's figures.
type Runner = experiments.Runner

// DefaultConfig returns the Table III machine (GTX 480 class).
func DefaultConfig() Config { return config.Default() }

// SmallConfig returns a reduced machine for quick experiments and tests.
func SmallConfig() Config { return config.Small() }

// Benchmarks lists the twelve workloads of Table IV.
func Benchmarks() []Benchmark { return workload.All() }

// BenchmarkByName finds a workload by its paper abbreviation (BH, BFS,
// CL, DLB, STN, VPR, HSP, KMN, LPS, NDL, SR, LUD).
func BenchmarkByName(name string) (Benchmark, bool) { return workload.ByName(name) }

// TraceBus is the cycle-stamped structured event bus threaded through
// every machine component: message sends/deliveries with their logical
// timestamps, L1/L2 transitions, lease lifecycle, clock advances,
// rollover phases, SC stall intervals, DRAM commands. A nil *TraceBus
// disables tracing at zero cost; see internal/trace for the event
// vocabulary and determinism contract.
type TraceBus = trace.Bus

// TraceEvent is one cycle-stamped observation on a TraceBus.
type TraceEvent = trace.Event

// TraceSink consumes trace events (JSONL, Perfetto, invariant checking,
// in-memory buffering, interval metrics).
type TraceSink = trace.Sink

// NewTraceBus builds an event bus over the given sinks.
func NewTraceBus(sinks ...TraceSink) *TraceBus { return trace.NewBus(sinks...) }

// NewJSONLTraceSink writes one fixed-field-order JSON object per event.
func NewJSONLTraceSink(w io.Writer) TraceSink { return trace.NewJSONLSink(w) }

// NewPerfettoTraceSink writes Chrome trace-event JSON loadable in
// ui.perfetto.dev; the timeline axis is the simulated cycle.
func NewPerfettoTraceSink(w io.Writer) TraceSink { return trace.NewPerfettoSink(w) }

// NewInvariantTraceSink checks the RCC/Tardis timestamp invariants over
// the event stream (ver <= exp on every lease, monotone L2 versions and
// core clocks); the first violation is reported via onFail (may be nil)
// and by the bus's Close/Err.
func NewInvariantTraceSink(onFail func(error)) TraceSink { return trace.NewInvariantSink(onFail) }

// NewIntervalTraceSink snapshots stats deltas into dst every interval
// cycles as metrics events. Register it on the bus before dst.
func NewIntervalTraceSink(dst TraceSink, interval uint64) TraceSink {
	return trace.NewIntervalSink(dst, interval)
}

// Run generates benchmark name under cfg, simulates it to completion, and
// returns the statistics and interconnect energy.
func Run(cfg Config, name string) (Result, error) {
	return RunTraced(cfg, name, nil)
}

// RunTraced is Run with an event bus attached for the duration of the
// simulation (nil tr is equivalent to Run). The caller keeps ownership
// of the bus and closes it after the run.
func RunTraced(cfg Config, name string, tr *TraceBus) (Result, error) {
	b, ok := workload.ByName(name)
	if !ok {
		return Result{}, fmt.Errorf("rccsim: unknown benchmark %q", name)
	}
	return sim.RunBenchmarkTraced(cfg, b, tr)
}

// RunProgram simulates an arbitrary user-supplied program. ob may be nil.
func RunProgram(cfg Config, prog *Program, ob Observer) (*Stats, error) {
	m, err := sim.New(cfg, prog, ob)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// NewMachine assembles a machine without running it (for cycle-stepping).
func NewMachine(cfg Config, prog *Program, ob Observer) (*Machine, error) {
	return sim.New(cfg, prog, ob)
}

// CycleCat is one category of the top-down cycle account: every SM-cycle
// of a run is attributed to exactly one (Stats.CycleAccount sums to
// Cycles × NumSMs).
type CycleCat = stats.CycleCat

// CycleCats enumerates the accounting categories in display order.
func CycleCats() []CycleCat { return stats.CycleCats() }

// Heat is a bounded top-K sketch of per-cache-line contention (reads,
// writes, renewals, version bumps, expiry waits, cross-SM ping-pong).
// A nil *Heat disables sampling at (near) zero cost.
type Heat = obs.Heat

// NewHeat returns a contention sketch tracking about k lines.
func NewHeat(k int) *Heat { return obs.NewHeat(k) }

// MetricsRegistry collects named series rendered as OpenMetrics text by
// the introspection server's /metrics endpoint.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RunTracker aggregates experiment progress (points done, ETA, simulated
// cycles/s, cycle-account totals) into a MetricsRegistry and serves /runs.
type RunTracker = obs.Tracker

// NewRunTracker wires a tracker into reg. Hook it to a Runner via the
// Started/Observe fields, or to sweeps via the WithPoint* options.
func NewRunTracker(reg *MetricsRegistry) *RunTracker { return obs.NewTracker(reg) }

// ServeIntrospection serves /metrics, /runs, /healthz and /debug/pprof on
// addr in a background goroutine, returning the bound address. tr may be
// nil (no /runs endpoint).
func ServeIntrospection(addr string, reg *MetricsRegistry, tr *RunTracker) (string, error) {
	return obs.StartServer(addr, reg, tr)
}

// RunObserved is RunTraced with a contention sketch also attached; either
// tr or heat may be nil.
func RunObserved(cfg Config, name string, tr *TraceBus, heat *Heat) (Result, error) {
	return RunSpanned(cfg, name, tr, heat, nil)
}

// SpanRecorder samples causal spans: per-op latency waterfalls whose
// segments (issue, L1, MSHR coalescing, NoC queueing/wire, L2 pipeline,
// protocol actions, DRAM, reply) sum exactly to the op's end-to-end
// latency, dependency edges between ops (coalesced misses, lease waits,
// barriers), and the critical path through them. A nil *SpanRecorder
// disables recording at zero cost.
type SpanRecorder = span.Recorder

// SpanSummary is the aggregate a SpanRecorder reports: per-segment
// percentile waterfalls, total blame per segment, the critical path, and
// the slowest sampled ops. Served as JSON on the introspection server's
// /spans endpoint.
type SpanSummary = span.Summary

// NewSpanRecorder returns a recorder sampling every Nth memory operation
// (deterministically by request ID, so identical runs sample identical
// ops). every <= 0 returns nil (recording off).
func NewSpanRecorder(every int) *SpanRecorder { return span.NewRecorder(every) }

// RunSpanned is RunObserved with a causal-span recorder also attached; any
// of tr, heat, sp may be nil. Attaching a recorder never changes simulated
// results; it does force the machine onto the sequential scheduler even
// when cfg.Shards > 1.
func RunSpanned(cfg Config, name string, tr *TraceBus, heat *Heat, sp *SpanRecorder) (Result, error) {
	b, ok := workload.ByName(name)
	if !ok {
		return Result{}, fmt.Errorf("rccsim: unknown benchmark %q", name)
	}
	return sim.RunBenchmarkSpanned(cfg, b, tr, heat, sp)
}

// FormatSpans renders a recorder's summary as the report's causal-span
// section (waterfall, critical path, slowest ops); "" when empty.
func FormatSpans(cfg Config, sp *SpanRecorder, topN int) string {
	return report.FormatSpans(cfg, sp, topN)
}

// ServeIntrospectionSpans is ServeIntrospection plus a /spans endpoint
// serving sp's summary as JSON (?top=N selects the slowest-op count). A
// nil sp serves 404 on /spans.
func ServeIntrospectionSpans(addr string, reg *MetricsRegistry, tr *RunTracker, sp *SpanRecorder) (string, error) {
	return obs.StartServerSpans(addr, reg, tr, sp)
}

// WriteCycleStacks renders st's cycle account as folded stacks
// (flamegraph.pl / speedscope input).
func WriteCycleStacks(w io.Writer, cfg Config, st *Stats) error {
	return report.CycleStacks(w, cfg, st)
}

// NewRunner returns an experiment runner over the given base machine,
// executing up to one simulation per CPU concurrently.
func NewRunner(base Config) *Runner { return experiments.NewRunner(base) }

// NewRunnerJobs returns an experiment runner executing at most jobs
// simulations concurrently (0 = one per CPU, 1 = strictly sequential).
// Results are bit-identical regardless of jobs.
func NewRunnerJobs(base Config, jobs int) *Runner { return experiments.NewRunnerJobs(base, jobs) }
